//! Cross-crate integration: full simulated scenarios exercising traffic,
//! radio, the protocol stack and the metrics plumbing together.

use geonet_repro::geo::{Area, Position};
use geonet_repro::scenarios::config::{AttackerSetup, Scale};
use geonet_repro::scenarios::{interarea, intraarea, ScenarioConfig, World};
use geonet_repro::sim::{SimDuration, SimTime};

fn short(duration_s: u64) -> ScenarioConfig {
    ScenarioConfig::paper_dsrc_default().with_duration(SimDuration::from_secs(duration_s))
}

#[test]
fn multi_hop_greedy_forwarding_delivers_east() {
    // A packet from the west end must cross ~8 greedy hops to reach the
    // eastern destination node.
    let mut w = World::new(short(30), None, 101);
    let dest = w.add_static_node(Position::new(4_020.0, 2.5), 486.0);
    let area = Area::circle(Position::new(4_020.0, 0.0), 40.0);
    w.run_until(SimTime::from_secs(5)); // beacons settle
    let source = w
        .on_road_nodes()
        .into_iter()
        .find(|&n| w.node_position(n).x < 200.0)
        .expect("vehicle near the west end");
    let key = w.originate_from(source, &area, vec![1, 2, 3]);
    w.run_until(SimTime::from_secs(10));
    assert!(
        w.was_received(key, dest),
        "eastbound GF delivery failed: received by {:?}",
        w.received_by(key).map(std::collections::BTreeSet::len)
    );
}

#[test]
fn cbf_flood_covers_the_road() {
    let mut w = World::new(short(30), None, 102);
    let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);
    w.run_until(SimTime::from_secs(4));
    let src = w.random_on_road_vehicle().expect("road is populated");
    let snapshot = w.on_road_nodes();
    let key = w.originate_from(w.vehicle_node(src), &area, vec![0xFE]);
    w.run_until(SimTime::from_secs(8));
    let got = snapshot.iter().filter(|n| w.was_received(key, **n)).count();
    let rate = got as f64 / snapshot.len() as f64;
    assert!(rate > 0.98, "CBF flood reached only {rate:.3}");
}

#[test]
fn cbf_flood_is_duplicate_suppressed() {
    // The flood must not devolve into a broadcast storm: the number of
    // re-broadcasts should be a small multiple of the hop count, far
    // below the number of receivers.
    let mut w = World::new(short(30), None, 103);
    let area = Area::rectangle(Position::new(2_000.0, 0.0), 2_050.0, 25.0, 90.0);
    w.run_until(SimTime::from_secs(4));
    let src = w.random_on_road_vehicle().unwrap();
    let n_vehicles = w.on_road_nodes().len();
    let key = w.originate_from(w.vehicle_node(src), &area, vec![1]);
    w.run_until(SimTime::from_secs(8));
    let rebroadcasts = w.aggregate_stats().cbf_rebroadcast;
    let received = w.received_by(key).map_or(0, std::collections::BTreeSet::len);
    assert!(received > n_vehicles / 2, "flood failed");
    assert!(
        rebroadcasts < n_vehicles as u64 / 2,
        "broadcast storm: {rebroadcasts} re-broadcasts for {n_vehicles} vehicles"
    );
}

#[test]
fn whole_experiment_pipeline_is_deterministic() {
    let cfg = ScenarioConfig::paper_dsrc_default();
    let scale = Scale { runs: 1, duration_s: 30 };
    let a = interarea::run_ab(&cfg, "wN", scale, 7);
    let b = interarea::run_ab(&cfg, "wN", scale, 7);
    assert_eq!(a, b, "same seed must give identical experiment results");
    let c = interarea::run_ab(&cfg, "wN", scale, 8);
    assert_ne!(a.baseline, c.baseline, "different seeds should differ");
}

#[test]
fn intraarea_outcomes_are_deterministic() {
    let cfg = short(30);
    let a = intraarea::run_one(&cfg, true, 55);
    let b = intraarea::run_one(&cfg, true, 55);
    assert_eq!(a, b);
}

#[test]
fn beacons_populate_location_tables_within_one_period() {
    let mut w = World::new(short(20), None, 104);
    // One beacon interval plus jitter: 3.75 s.
    w.run_until(SimTime::from_secs(4));
    let now = w.now();
    let mut populated = 0;
    let nodes = w.on_road_nodes();
    for &n in &nodes {
        if w.router(n).loct().live_count(now) > 5 {
            populated += 1;
        }
    }
    assert!(
        populated > nodes.len() * 9 / 10,
        "only {populated}/{} nodes heard their neighbours",
        nodes.len()
    );
}

#[test]
fn no_auth_failures_among_legitimate_nodes() {
    // Every frame in an attacker-free world is properly signed; nothing
    // should ever fail verification.
    let mut w = World::new(short(20), None, 105);
    w.run_until(SimTime::from_secs(20));
    let agg = w.aggregate_stats();
    assert_eq!(agg.auth_failures, 0);
    assert_eq!(agg.freshness_failures, 0);
    assert!(agg.beacons_accepted > 1_000, "beaconing looks dead: {agg:?}");
}

#[test]
fn attacker_presence_changes_nothing_until_it_transmits() {
    // An inter-area attacker that has heard nothing yet (first event
    // horizon) leaves the world identical to the attacker-free one.
    let cfg = short(20);
    let mut a = World::new(cfg, None, 106);
    let mut b = World::new(cfg, Some(AttackerSetup::InterArea), 106);
    a.run_until(SimTime::from_millis(100));
    b.run_until(SimTime::from_millis(100));
    assert_eq!(a.traffic().count_on_road(), b.traffic().count_on_road());
}

#[test]
fn vulnerable_packet_generation_respects_coverage_geometry() {
    let cfg = ScenarioConfig::paper_dsrc_default();
    // wN attacker at 2 000 m: no direction qualifies at the centre.
    let (e, w_) = interarea::vulnerable_directions(&cfg, 2_000.0);
    assert!(!e && !w_);
    // mN attacker: the centre is vulnerable westward and eastward? With
    // r = v2v both margins collapse to the attacker position itself.
    let mn = cfg.with_attack_range(486.0);
    assert_eq!(interarea::vulnerable_directions(&mn, 1_999.0), (true, false));
    assert_eq!(interarea::vulnerable_directions(&mn, 2_001.0), (false, true));
}
