//! Offline stand-in for the `bytes` crate.
//!
//! Only the [`BufMut`] write interface used by the GeoNetworking wire
//! codecs is provided, implemented for `Vec<u8>`. All multi-byte writes
//! are big-endian, matching the real crate's `put_u16`/`put_u32`/`put_u64`
//! (network byte order, which is also what EN 302 636-4-1 prescribes).

#![forbid(unsafe_code)]

/// A trait for buffers that can be written to incrementally.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` in big-endian byte order.
    fn put_u16(&mut self, v: u16);
    /// Appends a `u32` in big-endian byte order.
    fn put_u32(&mut self, v: u32);
    /// Appends a `u64` in big-endian byte order.
    fn put_u64(&mut self, v: u64);
    /// Appends an `i32` in big-endian byte order.
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }
    fn put_u16(&mut self, v: u16) {
        (**self).put_u16(v);
    }
    fn put_u32(&mut self, v: u32) {
        (**self).put_u32(v);
    }
    fn put_u64(&mut self, v: u64) {
        (**self).put_u64(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::BufMut;

    #[test]
    fn big_endian_layout() {
        let mut out = Vec::new();
        out.put_u8(0x01);
        out.put_u16(0x0203);
        out.put_u32(0x0405_0607);
        out.put_u64(0x0809_0A0B_0C0D_0E0F);
        out.put_slice(&[0xAA, 0xBB]);
        assert_eq!(
            out,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F, 0xAA, 0xBB]
        );
    }
}
