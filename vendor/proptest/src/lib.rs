//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest its tests actually use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `any::<T>()`, numeric
//! range strategies, tuple strategies, `Strategy::prop_map`,
//! [`prop_oneof!`], `prop::collection::vec`, `prop::option::of` and
//! `prop::sample::select`, plus [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the message instead of minimizing them.
//! * **Deterministic.** The RNG is seeded from the test's module path and
//!   name, so failures reproduce exactly across runs and machines.
//! * **No persistence files**, no forking, no `PROPTEST_*` environment
//!   handling.

#![forbid(unsafe_code)]

/// Strategy trait and implementations for the primitive shapes the
/// workspace tests generate.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree: a strategy is just a
    /// sampler, and rejected or failing cases are not shrunk.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (no shrinking to invert, so
        /// this is just post-composition).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy built by [`prop_oneof!`](crate::prop_oneof): draws one
    /// value from a uniformly chosen arm. Real proptest weights arms and
    /// shrinks toward earlier ones; this sampler has neither.
    pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.0.len())
        }
    }

    impl<T: std::fmt::Debug> Union<T> {
        /// Combines `arms` into one strategy; panics on an empty list.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].new_value(rng)
        }
    }

    /// Boxes a strategy for [`Union`]; the `prop_oneof!` macro calls
    /// this so its arms unify to one type.
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    // Span in u64 arithmetic; 0 encodes "whole domain".
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        rng.gen::<u64>() as $t
                    } else {
                        start.wrapping_add((rng.gen::<u64>() % span) as $t)
                    }
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws a value covering the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`](crate::any).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The whole-domain strategy for `T` — `any::<u16>()`, `any::<bool>()`, …
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<T>`; yields `Some` three times out of four,
    /// mirroring real proptest's bias towards the interesting variant.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.0.new_value(rng))
            } else {
                None
            }
        }
    }
}

/// Test-runner plumbing: configuration, the deterministic RNG, and the
/// case-level error type.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the inputs are outside the test's
        /// domain; the case is skipped without counting.
        Reject(String),
        /// `prop_assert!`-style failure: the property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
        /// Whether this is a rejection (assumption failure).
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from a stable hash of `name` (the test's
        /// module path + function name), so every run of a given test
        /// sees the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a, which is stable across platforms and Rust versions
            // (unlike `DefaultHasher`).
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Choice strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding a clone of one element of a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Picks uniformly from `options`; panics on an empty list.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// `prop::` namespace mirroring real proptest's prelude alias.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Combines strategies yielding the same value type into one that draws
/// from a uniformly chosen arm. Weights (`n => strategy`) are not
/// supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts a property inside a `proptest!` body; on failure the case
/// returns an error (and the harness panics with the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa == *__pb,
            "assertion failed: `{:?}` == `{:?}`",
            __pa,
            __pb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(*__pa == *__pb, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(*__pa != *__pb, "assertion failed: `{:?}` != `{:?}`", __pa, __pb);
    }};
}

/// Skips the current case (without counting it) when its inputs fall
/// outside the property's domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute comes from the user-written meta,
/// exactly as with real proptest) that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            // Allow some headroom for prop_assume! rejections before
            // declaring the domain too narrow.
            let __max_attempts = __config.cases.saturating_mul(16).max(16);
            while __passed < __config.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest {}: too many rejected cases ({} attempts, {} passed)",
                    stringify!($name),
                    __attempts,
                    __passed,
                );
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                let __case_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg,)+
                );
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => continue,
                    ::std::result::Result::Err(e) => panic!(
                        "proptest {} case #{} {} with inputs: {}",
                        stringify!($name),
                        __passed + 1,
                        e,
                        __case_inputs,
                    ),
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..100, pair in (0u8..=255, any::<bool>())) {
            prop_assert!(x < 100);
            let (a, b) = pair;
            let _ = (a, b);
        }

        #[test]
        fn maps_unions_and_selects(
            mapped in (0u8..10).prop_map(|v| v * 2),
            either in prop_oneof![(0u32..5).prop_map(|v| v), (100u32..105).prop_map(|v| v)],
            picked in prop::sample::select(vec!["a", "b", "c"]))
        {
            prop_assert!(mapped % 2 == 0 && mapped < 20);
            prop_assert!(either < 5 || (100..105).contains(&either));
            prop_assert!(["a", "b", "c"].contains(&picked));
        }

        #[test]
        fn vectors_and_options(
            xs in prop::collection::vec((0u64..50, any::<bool>()), 0..20),
            o in prop::option::of(1.0f64..2.0))
        {
            prop_assert!(xs.len() < 20);
            if let Some(v) = o {
                prop_assert!((1.0..2.0).contains(&v));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_and_assume(x in 0u32..1_000) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x = {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::TestRng::deterministic("name");
        let mut r2 = crate::test_runner::TestRng::deterministic("name");
        for _ in 0..32 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }
}
