//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal crate instead of the real `serde`. It keeps the parts of
//! the public surface this repository touches:
//!
//! * the `Serialize` / `Deserialize` trait names (as marker traits with
//!   blanket impls, so bounds written against them always hold), and
//! * the `derive` feature re-exporting no-op derive macros from the
//!   vendored `serde_derive`.
//!
//! Actual wire serialization in this workspace is hand-written where it is
//! needed: the packet codecs in `geonet::wire` and the JSONL trace codec
//! in `geonet_sim::trace`.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type, so `#[derive(Serialize)]` (a no-op
/// under the vendored `serde_derive`) leaves types satisfying
/// `T: Serialize` bounds exactly as with the real crate.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
