//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`Bencher`], [`BenchmarkGroup`], `criterion_group!`/`criterion_main!`
//! and [`black_box`] — backed by a simple wall-clock harness: warm up,
//! then take `sample_size` samples and report the median ns/iteration to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison; the point is that `cargo bench` runs offline and produces
//! stable, comparable numbers.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-invocation measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (consuming builder,
    /// as in real criterion's `Criterion::default().sample_size(..)`).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), &self.settings, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup { _parent: self, name: name.into(), settings }
    }

    /// Final-summary hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group (in-place, as in real
    /// criterion's `group.sample_size(10);`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, &self.settings, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
}

impl Bencher {
    /// Measures `routine`, first warming up, then timing batches sized so
    /// each sample runs for roughly `measurement_time / sample_size`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warmup_end = Instant::now() + self.settings.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warmup_end {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let per_sample =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size.max(1) as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, f: &mut F) {
    let mut b = Bencher { settings: settings.clone(), median_ns: f64::NAN };
    f(&mut b);
    if b.median_ns.is_nan() {
        println!("{id:<50} (no measurement: Bencher::iter never called)");
    } else if b.median_ns < 10_000.0 {
        println!("{id:<50} {:>12.1} ns/iter", b.median_ns);
    } else if b.median_ns < 10_000_000.0 {
        println!("{id:<50} {:>12.2} µs/iter", b.median_ns / 1e3);
    } else {
        println!("{id:<50} {:>12.2} ms/iter", b.median_ns / 1e6);
    }
}

/// Declares a benchmark group function, mirroring real criterion's two
/// forms (`name/config/targets` and the plain list).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Settings {
        Settings {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(5),
        }
    }

    #[test]
    fn measures_something() {
        let mut c = Criterion { settings: fast() };
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_share_prefix_and_settings() {
        let mut c = Criterion { settings: fast() };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(0u8)));
        group.finish();
    }
}
