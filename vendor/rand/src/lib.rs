//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`RngCore`],
//! [`SeedableRng`] and [`Rng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through splitmix64), uniform range sampling for
//! the primitive types, and Bernoulli draws.
//!
//! Everything here is deterministic and allocation-free; there is no OS
//! entropy source (`from_entropy` is deliberately absent — simulations in
//! this workspace are always explicitly seeded).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced by the vendored
/// generators; exists for signature compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with
    /// splitmix64 (matching rand's documented behaviour of deriving the
    /// full seed deterministically from the integer).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = splitmix64(z);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from their whole domain (`rng.gen()`).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling: unbiased bounded draw.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = rng.next_u64();
                    if x < zone || zone == 0 {
                        return self.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let x = rng.next_u64();
                    if x < zone || zone == 0 {
                        return self.start.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value covering the type's whole domain.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`.
    ///
    /// The statistical quality is ample for simulation workloads; the
    /// stream is stable across platforms and versions of this vendored
    /// crate, which is what the reproduction actually relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = r.gen_range(-40i64..40);
            assert!((-40..40).contains(&i));
        }
    }

    #[test]
    fn gen_bool_calibration() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
