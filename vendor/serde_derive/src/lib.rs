//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal facade (see `vendor/serde`). The derive
//! macros here accept the usual `#[derive(Serialize, Deserialize)]`
//! syntax (including `#[serde(...)]` attributes) and expand to nothing:
//! the vendored `serde` crate provides blanket implementations of its
//! marker traits, so derived types still satisfy `T: Serialize` bounds.
//!
//! Structured serialization in this workspace is done by hand where it is
//! actually needed (see `geonet_sim::trace` for the JSONL codec).

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the vendored `serde::Serialize` is a marker
/// trait with a blanket impl, so there is nothing to generate.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive, mirroring [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
